package fabric

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/obs/critpath"
	"repro/internal/sim"
)

// Msg is a message delivered into a rank's mailbox. Kind and Tag are
// interpreted by the layer that sent the message (the fabric itself
// attaches no meaning). Payload carries protocol state by reference —
// the simulation does not serialize it; Size alone determines cost.
type Msg struct {
	From    int
	Kind    int
	Tag     int
	Size    int
	Payload interface{}
	Arrived sim.Time

	// chain is the message's dependence edge in the critical-path
	// recorder (zero when analysis is off): set at the send site, it
	// names the delivery as the wake cause of whoever it releases.
	chain critpath.Ref
}

// mailbox holds delivered-but-unreceived messages and the set of
// waiters parked on a match.
type mailbox struct {
	owner   int // rank this mailbox belongs to
	queue   []*Msg
	waiters []*waiter
}

type waiter struct {
	p     *sim.Proc
	match func(*Msg) bool
	got   *Msg
	fn    func(*Msg) // callback waiter: runs in event context instead of unparking
}

// XferOpt tunes the cost model of a single transfer.
type XferOpt struct {
	Rate     float64 // override bandwidth (B/s); 0 = platform default
	Overhead float64 // extra per-message origin overhead (ns)
	NoNIC    bool    // do not occupy NIC links (e.g. pure control)
}

// xferCost computes the (start, arrive) times of moving n bytes from
// rank src to rank dst starting no earlier than now, updating NIC
// occupancy. Intra-node transfers use the shared-memory path and do not
// occupy NICs.
func (m *Machine) xferCost(now sim.Time, src, dst, n int, opt XferOpt) (start, arrive sim.Time) {
	par := &m.Par
	m.MsgsSent++
	m.BytesSent += int64(n)
	m.Obs.Inc(src, obs.CFabMsgs)
	m.Obs.Add(src, obs.CFabBytes, int64(n))
	if m.SameNode(src, dst) {
		rate := opt.Rate
		if rate == 0 {
			rate = par.LocalBandwidth
		}
		dur := par.LocalLatencyNs + opt.Overhead + float64(n)/rate*1e9
		start = now
		arrive = now + sim.FromSeconds(dur/1e9)
		if arrive <= now {
			arrive = now + 1
		}
		m.lastXfer.Base, m.lastXfer.Start, m.lastXfer.Arrive = now, start, arrive
		return start, arrive
	}
	rate := opt.Rate
	if rate == 0 {
		rate = par.Bandwidth
	}
	base := now + sim.FromSeconds((par.MsgOverhead+opt.Overhead)/1e9)
	start = base
	occupy := sim.FromSeconds(float64(n) / rate)
	if !opt.NoNIC {
		sn, dn := m.NodeOf(src), m.NodeOf(dst)
		s, d := &m.nics[sn], &m.nics[dn]
		if s.freeAt > start {
			start = s.freeAt
		}
		if d.freeAt > start {
			start = d.freeAt
		}
		s.freeAt = start + occupy
		d.freeAt = start + occupy
		m.Obs.LinkBusy(sn, occupy)
		m.Obs.LinkBusy(dn, occupy)
		if pr := m.Obs.Prof(); pr != nil {
			queued, backlog := start-base, start+occupy-now
			pr.Link(sn, n, queued, occupy, backlog)
			pr.Link(dn, n, queued, occupy, backlog)
		}
		if m.Obs.Tracing() {
			m.Obs.SpanLane(obs.LaneNIC(sn), "nic", "xfer", start, start+occupy,
				obs.A("bytes", n), obs.A("dst", dst))
		}
	}
	arrive = start + occupy + sim.FromSeconds(par.LatencyNs/1e9)
	if arrive <= now {
		arrive = now + 1
	}
	m.lastXfer.Base, m.lastXfer.Start, m.lastXfer.Arrive = base, start, arrive
	return start, arrive
}

// Deliver moves a message from rank msg.From to rank dst, charging the
// cost model, and delivers it into dst's mailbox at the arrival time.
// It does not block the caller; use the returned arrival time to model
// blocking semantics. Must be called from a rank body or event handler.
func (m *Machine) Deliver(dst int, msg *Msg, opt XferOpt) sim.Time {
	if dst < 0 || dst >= m.NRanks {
		panic(fmt.Sprintf("fabric: Deliver to bad rank %d", dst))
	}
	now := m.Eng.Now()
	_, arrive := m.xferCost(now, msg.From, dst, msg.Size, opt)
	if c := m.Obs.Crit(); c != nil {
		nicS, nicD := m.xferNics(msg.From, dst, opt)
		msg.chain = c.MsgHop(msg.From, now, m.lastXfer.Start, arrive, nicS, nicD, c.Ambient())
	}
	box := m.boxes[dst]
	m.Eng.At(arrive, func() {
		msg.Arrived = arrive
		box.queue = append(box.queue, msg)
		m.matchWaiters(box)
	})
	return arrive
}

// matchWaiters wakes every parked waiter whose predicate now matches a
// queued message, consuming matched messages in FIFO order. Callback
// waiters run inline (event context) under the matched message's
// dependence provenance; proc waiters have the message named as their
// wake cause, then are unparked.
func (m *Machine) matchWaiters(box *mailbox) {
	for i := 0; i < len(box.waiters); {
		w := box.waiters[i]
		if idx := box.findLocked(w.match); idx >= 0 {
			w.got = box.queue[idx]
			box.queue = append(box.queue[:idx], box.queue[idx+1:]...)
			box.waiters = append(box.waiters[:i], box.waiters[i+1:]...)
			if w.fn != nil {
				if c := m.critOf(box.owner); c != nil {
					prev := c.SetAmbient(w.got.chain)
					w.fn(w.got)
					c.SetAmbient(prev)
				} else {
					w.fn(w.got)
				}
			} else {
				if c := m.critOf(w.p.ID()); c != nil {
					c.WakeCause(w.p.ID(), w.got.chain)
				}
				m.Eng.Unpark(w.p)
			}
			continue
		}
		i++
	}
}

func (b *mailbox) findLocked(match func(*Msg) bool) int {
	for i, msg := range b.queue {
		if match(msg) {
			return i
		}
	}
	return -1
}

// Recv blocks the calling rank until a message matching the predicate
// is available in its mailbox and returns it. Messages are matched in
// arrival order.
func (m *Machine) Recv(p *sim.Proc, match func(*Msg) bool) *Msg {
	box := m.boxes[p.ID()]
	if idx := box.findLocked(match); idx >= 0 {
		msg := box.queue[idx]
		box.queue = append(box.queue[:idx], box.queue[idx+1:]...)
		return msg
	}
	w := &waiter{p: p, match: match}
	box.waiters = append(box.waiters, w)
	p.Park("fabric.Recv")
	return w.got
}

// OnRecv registers a one-shot callback on a rank's mailbox: when a
// matching message arrives (or is already queued), it is consumed and
// fn runs in event context. Used for event-driven protocols (e.g. the
// MPI rendezvous sender) that must progress while the owning rank is
// busy or parked elsewhere.
func (m *Machine) OnRecv(rank int, match func(*Msg) bool, fn func(*Msg)) {
	box := m.boxes[rank]
	if idx := box.findLocked(match); idx >= 0 {
		msg := box.queue[idx]
		box.queue = append(box.queue[:idx], box.queue[idx+1:]...)
		// Run via the event queue so the caller's context never nests.
		m.Eng.At(m.Eng.Now(), func() {
			if c := m.critOf(rank); c != nil {
				prev := c.SetAmbient(msg.chain)
				fn(msg)
				c.SetAmbient(prev)
				return
			}
			fn(msg)
		})
		return
	}
	box.waiters = append(box.waiters, &waiter{match: match, fn: fn})
}

// TryRecv returns a matching message if one is already queued, without
// blocking. The second result reports whether a message was consumed.
func (m *Machine) TryRecv(p *sim.Proc, match func(*Msg) bool) (*Msg, bool) {
	box := m.boxes[p.ID()]
	if idx := box.findLocked(match); idx >= 0 {
		msg := box.queue[idx]
		box.queue = append(box.queue[:idx], box.queue[idx+1:]...)
		return msg, true
	}
	return nil, false
}

// Pending reports the number of undelivered messages queued at a rank.
func (m *Machine) Pending(rank int) int { return len(m.boxes[rank].queue) }

// SendData performs a blocking timed transfer of n bytes from the
// calling rank to dst and parks the caller until the data has fully
// arrived at dst (remote completion). It delivers no message; it only
// charges time. Used for RDMA-style data movement where the control
// protocol is handled separately.
func (m *Machine) SendData(p *sim.Proc, dst, n int, opt XferOpt) {
	_, arrive := m.xferCost(p.Now(), p.ID(), dst, n, opt)
	m.SleepUntil(p, arrive)
}

// SendDataAsync is SendData without blocking: it charges the transfer
// and returns its arrival time.
func (m *Machine) SendDataAsync(from, dst, n int, opt XferOpt) sim.Time {
	_, arrive := m.xferCost(m.Eng.Now(), from, dst, n, opt)
	return arrive
}

// xferNics returns the (origin, destination) NIC nodes a transfer
// occupies, or (-1, -1) when it bypasses the links.
func (m *Machine) xferNics(src, dst int, opt XferOpt) (int, int) {
	if opt.NoNIC || m.SameNode(src, dst) {
		return -1, -1
	}
	return m.NodeOf(src), m.NodeOf(dst)
}

// RoundTripTime returns the cost of a minimal control round trip
// between the calling rank and target (two latency-dominated messages),
// without charging it to NIC occupancy.
func (m *Machine) RoundTripTime(src, dst int) sim.Time {
	lat := m.Par.LatencyNs
	if m.SameNode(src, dst) {
		lat = m.Par.LocalLatencyNs
	}
	return sim.FromSeconds(2 * (lat + m.Par.MsgOverhead) / 1e9)
}
