package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// This file is the fabric's side of sim.ModeParallel: the lookahead
// bound, the node-aligned rank partitioner, and a delivery path whose
// every state touch is confined to the shard that owns it.
//
// The regular Deliver/SendData paths mutate machine-global state
// synchronously at the origin — both endpoints' NIC clocks, the shared
// MsgsSent/BytesSent counters, the single obs recorder — which is why
// the full communication stacks run parallel mode with one shard.
// DeliverSharded splits the cost model at the wire: origin-side
// overhead and source-NIC occupancy are charged on the sending shard,
// the flight is a cross-shard event (arriving at least
// MinCrossNodeLatency after the send decision, which is exactly the
// engine's Lookahead bound), and destination-NIC arbitration plus the
// mailbox insertion run on the receiving shard at arrival. Under a
// node-aligned partition every NIC, mailbox, and per-rank counter is
// then touched by exactly one shard.

// MinCrossNodeLatency is the smallest virtual delay between a
// cross-node send decision and its earliest observable effect at the
// destination: per-message origin overhead plus one-way wire latency
// (queueing and serialization only add to it). It is computed as the
// sum of the same rounded terms the delivery paths charge, so it is a
// true lower bound on every cross-node arrival — the lookahead a
// parallel engine partitioned on node boundaries can safely use.
func (p *Params) MinCrossNodeLatency() sim.Time {
	return sim.FromSeconds(p.MsgOverhead/1e9) + sim.FromSeconds(p.LatencyNs/1e9)
}

// MinCrossNodeLatency returns the machine's lookahead bound.
func (m *Machine) MinCrossNodeLatency() sim.Time { return m.Par.MinCrossNodeLatency() }

// NodeAlignedPartition maps nranks ranks onto at most shards shards
// without ever splitting a node across two shards, so the shm fast
// path, node windows, NICs, and mailboxes of one node always live on
// one shard. Nodes are dealt into contiguous, balanced groups. It
// returns the rank->shard map and the effective shard count (clamped
// to the node count).
func NodeAlignedPartition(par Params, nranks, shards int) ([]int, int) {
	nodes := (nranks + par.CoresPerNode - 1) / par.CoresPerNode
	if shards < 1 {
		shards = 1
	}
	if shards > nodes {
		shards = nodes
	}
	part := make([]int, nranks)
	for r := range part {
		node := r / par.CoresPerNode
		part[r] = node * shards / nodes
	}
	return part, shards
}

// ShardedTraffic sums the per-rank injection counters maintained by
// DeliverSharded. Safe once Run has returned (or between windows).
func (m *Machine) ShardedTraffic() (msgs, bytes int64) {
	for _, v := range m.sendMsgs {
		msgs += v
	}
	for _, v := range m.sendBytes {
		bytes += v
	}
	return msgs, bytes
}

// DeliverSharded moves msg from the calling rank to dst under the
// shard-confined cost model and returns the wire arrival time (the
// instant destination-side processing begins; NIC arbitration at the
// receiver may land the message in the mailbox slightly later). The
// caller must be msg.From's flow of control. Unlike Deliver it never
// touches destination-shard state at the origin: intra-node delivery
// stays on the shared shard, and cross-node delivery charges the
// source NIC now, flies as a cross-shard event, and arbitrates the
// destination NIC on arrival. The machine-global counters and the obs
// recorder are not used — per-rank counters (ShardedTraffic) replace
// them, because shards would race on anything global.
func (m *Machine) DeliverSharded(p *sim.Proc, dst int, msg *Msg, opt XferOpt) sim.Time {
	if dst < 0 || dst >= m.NRanks {
		panic(fmt.Sprintf("fabric: DeliverSharded to bad rank %d", dst))
	}
	src := p.ID()
	now := p.Now()
	n := msg.Size
	m.sendMsgs[src]++
	m.sendBytes[src] += int64(n)
	par := &m.Par
	box := m.boxes[dst]
	if m.SameNode(src, dst) {
		rate := opt.Rate
		if rate == 0 {
			rate = par.LocalBandwidth
		}
		dur := par.LocalLatencyNs + opt.Overhead + float64(n)/rate*1e9
		arrive := now + sim.FromSeconds(dur/1e9)
		if arrive <= now {
			arrive = now + 1
		}
		if c := m.critOf(src); c != nil {
			msg.chain = c.MsgHop(src, now, now, arrive, -1, -1, c.Ambient())
		}
		m.Eng.AtRank(arrive, src, dst, func() {
			msg.Arrived = arrive
			box.queue = append(box.queue, msg)
			m.matchWaiters(box)
		})
		return arrive
	}
	rate := opt.Rate
	if rate == 0 {
		rate = par.Bandwidth
	}
	start := now + sim.FromSeconds((par.MsgOverhead+opt.Overhead)/1e9)
	occupy := sim.FromSeconds(float64(n) / rate)
	if !opt.NoNIC {
		s := &m.nics[m.NodeOf(src)]
		if s.freeAt > start {
			start = s.freeAt
		}
		s.freeAt = start + occupy
	}
	arrive := start + occupy + sim.FromSeconds(par.LatencyNs/1e9)
	if c := m.critOf(src); c != nil {
		nicS, nicD := m.xferNics(src, dst, opt)
		msg.chain = c.MsgHop(src, now, start, arrive, nicS, nicD, c.Ambient())
	}
	m.Eng.AtRank(arrive, src, dst, func() {
		land := arrive
		if !opt.NoNIC {
			d := &m.nics[m.NodeOf(dst)]
			if d.freeAt > land {
				land = d.freeAt
			}
			d.freeAt = land + occupy
		}
		if land > arrive {
			// The edge extension is recorded on the destination shard's
			// recorder (this closure runs there); the origin shard's hop
			// table is never touched after the send.
			if c := m.critOf(dst); c != nil {
				msg.chain = c.ArbHop(msg.From, arrive, land, m.NodeOf(dst), msg.chain)
			}
			m.Eng.AtRank(land, dst, dst, func() {
				msg.Arrived = land
				box.queue = append(box.queue, msg)
				m.matchWaiters(box)
			})
			return
		}
		msg.Arrived = arrive
		box.queue = append(box.queue, msg)
		m.matchWaiters(box)
	})
	return arrive
}
