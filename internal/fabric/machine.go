// Package fabric models a distributed-memory parallel machine on top of
// the sim engine: nodes with multiple cores, per-node NICs with link
// occupancy, latency/bandwidth message delivery, per-rank mailboxes,
// per-rank virtual address spaces, and a memory registration (pinning)
// model with pre-pinned and on-demand paths.
//
// The fabric is mechanism only: it charges virtual time for data
// movement, computation, and registration. Policy (protocols, when to
// pin, how to stage) lives in the runtimes built on top of it
// (internal/native and internal/mpi).
package fabric

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/obs/critpath"
	"repro/internal/sim"
)

// Params describes the hardware characteristics of a simulated machine.
// Rates are in bytes per second; latencies and overheads in nanoseconds.
type Params struct {
	Name         string
	Nodes        int
	CoresPerNode int

	// Network link model.
	LatencyNs   float64 // one-way wire latency between nodes
	Bandwidth   float64 // per-NIC injection bandwidth (B/s)
	MsgOverhead float64 // per-message software overhead at the origin (ns)

	// Intra-node transfers (shared memory).
	LocalLatencyNs float64
	LocalBandwidth float64

	// CPU model.
	CopyRate float64 // memory copy / datatype pack rate (B/s)
	Flops    float64 // per-core floating point rate (flop/s)

	// Memory registration model.
	PageSize        int     // registration granularity (bytes)
	PinPageNs       float64 // cost to register one page on demand
	BounceThreshold int     // transfers <= this can use pre-pinned bounce buffers
	BounceRate      float64 // effective rate of the bounce-buffer (copy) path
	UnpinnedRate    float64 // effective rate of the unregistered pipelined path

	// Target-side processing.
	AccumRate float64 // rate at which a NIC/agent applies accumulates (B/s)

	// Shared-memory segment model. ShmCopyRate is the CPU load/store
	// copy rate between two processes mapping the same node-local
	// segment (B/s). Zero falls back to LocalBandwidth, i.e. no
	// dedicated fast path beyond the intra-node link model.
	ShmCopyRate float64
}

// Validate reports the first problem with the parameter set.
func (p *Params) Validate() error {
	switch {
	case p.Nodes <= 0:
		return fmt.Errorf("fabric: %s: Nodes must be positive", p.Name)
	case p.CoresPerNode <= 0:
		return fmt.Errorf("fabric: %s: CoresPerNode must be positive", p.Name)
	case p.Bandwidth <= 0 || p.LocalBandwidth <= 0:
		return fmt.Errorf("fabric: %s: bandwidths must be positive", p.Name)
	case p.CopyRate <= 0 || p.Flops <= 0:
		return fmt.Errorf("fabric: %s: CPU rates must be positive", p.Name)
	case p.PageSize <= 0:
		return fmt.Errorf("fabric: %s: PageSize must be positive", p.Name)
	case p.AccumRate <= 0:
		return fmt.Errorf("fabric: %s: AccumRate must be positive", p.Name)
	}
	return nil
}

// MaxRanks is the number of ranks the machine supports.
func (p *Params) MaxRanks() int { return p.Nodes * p.CoresPerNode }

// nic tracks the occupancy of one node's network interface.
type nic struct {
	freeAt sim.Time
}

// Machine binds fabric state to a sim.Engine for a given rank count.
type Machine struct {
	Eng    *sim.Engine
	Par    Params
	NRanks int

	nics   []nic
	boxes  []*mailbox
	spaces []*AddrSpace

	// Counters, exposed for tests and benchmarks.
	MsgsSent    int64
	BytesSent   int64
	PagesPinned int64
	ShmCopies   int64
	ShmBytes    int64

	// Per-rank injection counters for the shard-confined delivery path
	// (shard.go); the global counters above would race across shards.
	sendMsgs  []int64
	sendBytes []int64

	// Obs, when non-nil, receives per-rank injection counters and
	// per-node NIC link busy time. All hooks are nil-safe no-ops.
	Obs *obs.Recorder

	// CritFor, when non-nil, resolves the critical-path recorder that
	// owns a rank's dependence logs — the per-shard sub-recorders of a
	// multi-shard parallel run (a recording must go to the recorder of
	// the shard that owns the rank). When nil, Obs's recorder (possibly
	// none) serves every rank. The resolver must be immutable during
	// the run: shard workers call it concurrently.
	CritFor func(rank int) *critpath.Rec

	// lastXfer records the timing decomposition of the most recent
	// xferCost: Base is the pre-NIC-arbitration earliest start (origin
	// overheads charged), Start the actual wire start after link
	// queueing, Arrive the remote arrival. The scheduler is
	// cooperative, so a caller reading it immediately after
	// SendData/SendDataAsync sees its own transfer.
	lastXfer struct{ Base, Start, Arrive sim.Time }
}

// LastXfer returns the timing decomposition of the most recent
// transfer; see the lastXfer field. Profiler hooks use it to split an
// op's wire time into queueing [Base, Start) and transfer [Start,
// Arrive).
func (m *Machine) LastXfer() (base, start, arrive sim.Time) {
	return m.lastXfer.Base, m.lastXfer.Start, m.lastXfer.Arrive
}

// NewMachine creates fabric state for nranks ranks on engine eng.
// nranks must not exceed par.MaxRanks().
func NewMachine(eng *sim.Engine, par Params, nranks int) (*Machine, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if nranks <= 0 || nranks > par.MaxRanks() {
		return nil, fmt.Errorf("fabric: %s: nranks %d out of range 1..%d",
			par.Name, nranks, par.MaxRanks())
	}
	m := &Machine{Eng: eng, Par: par, NRanks: nranks}
	nodes := (nranks + par.CoresPerNode - 1) / par.CoresPerNode
	m.nics = make([]nic, nodes)
	m.boxes = make([]*mailbox, nranks)
	m.spaces = make([]*AddrSpace, nranks)
	m.sendMsgs = make([]int64, nranks)
	m.sendBytes = make([]int64, nranks)
	for i := range m.boxes {
		m.boxes[i] = &mailbox{owner: i}
		m.spaces[i] = newAddrSpace(i)
	}
	return m, nil
}

// critOf returns the critical-path recorder owning rank's logs.
func (m *Machine) critOf(rank int) *critpath.Rec {
	if m.CritFor != nil {
		return m.CritFor(rank)
	}
	return m.Obs.Crit()
}

// NodeOf returns the node hosting the given rank.
func (m *Machine) NodeOf(rank int) int { return rank / m.Par.CoresPerNode }

// SameNode reports whether two ranks share a node.
func (m *Machine) SameNode(a, b int) bool { return m.NodeOf(a) == m.NodeOf(b) }

// Space returns the virtual address space of a rank.
func (m *Machine) Space(rank int) *AddrSpace { return m.spaces[rank] }

// Compute charges the virtual time needed to execute flops floating
// point operations on the calling rank's core.
func (m *Machine) Compute(p *sim.Proc, flops float64) {
	if flops <= 0 {
		return
	}
	p.Elapse(sim.FromSeconds(flops / m.Par.Flops))
}

// CopyLocal charges the virtual time of a local memory copy (or
// datatype pack/unpack) of n bytes.
func (m *Machine) CopyLocal(p *sim.Proc, n int) {
	if n <= 0 {
		return
	}
	p.Elapse(sim.FromSeconds(float64(n) / m.Par.CopyRate))
}

// CopyTime returns the virtual duration of a local copy of n bytes
// without charging it.
func (m *Machine) CopyTime(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.FromSeconds(float64(n) / m.Par.CopyRate)
}

// SleepUntil parks the calling rank until absolute virtual time t.
func (m *Machine) SleepUntil(p *sim.Proc, t sim.Time) {
	if d := t - p.Now(); d > 0 {
		p.Elapse(d)
	}
}
