package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// ShmSegment models one node's shared-memory segment: a set of regions,
// one per participating rank on that node, that every co-located rank
// can address directly with CPU loads and stores. Transfers through a
// segment are plain memcpys — they never touch the NIC, occupy no link,
// and need no memory registration; their cost is tied to the CPU copy
// rate (Params.ShmCopyRate).
type ShmSegment struct {
	Node    int
	regions map[int]*Region // world rank -> attached region
}

// NewShmSegment creates an (initially empty) shared segment on a node.
func (m *Machine) NewShmSegment(node int) *ShmSegment {
	return &ShmSegment{Node: node, regions: map[int]*Region{}}
}

// Attach maps rank's region into the segment. The rank must live on the
// segment's node.
func (s *ShmSegment) Attach(rank int, reg *Region) error {
	if reg == nil {
		return nil
	}
	if reg.Rank != rank {
		return fmt.Errorf("fabric: shm attach: region belongs to rank %d, not %d", reg.Rank, rank)
	}
	s.regions[rank] = reg
	return nil
}

// RegionOf returns the directly-addressable region a rank attached to
// the segment (the Win_shared_query answer), or nil if the rank never
// attached one.
func (s *ShmSegment) RegionOf(rank int) *Region { return s.regions[rank] }

// ShmRate returns the effective shared-memory copy rate in B/s.
func (m *Machine) ShmRate() float64 {
	if m.Par.ShmCopyRate > 0 {
		return m.Par.ShmCopyRate
	}
	return m.Par.LocalBandwidth
}

// ShmCopyTime returns the virtual duration of a shared-memory copy of n
// bytes without charging it.
func (m *Machine) ShmCopyTime(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.FromSeconds(float64(n) / m.ShmRate())
}

// ShmCopy charges the calling rank the cost of moving n bytes through a
// shared segment and records the transfer in the machine counters.
func (m *Machine) ShmCopy(p *sim.Proc, n int) {
	if n <= 0 {
		return
	}
	m.ShmAccount(n)
	p.Elapse(m.ShmCopyTime(n))
}

// ShmAccount records a shared-memory transfer of n bytes whose time is
// charged separately by the caller (e.g. a serialized accumulate).
func (m *Machine) ShmAccount(n int) {
	if n <= 0 {
		return
	}
	m.ShmCopies++
	m.ShmBytes += int64(n)
}
