package repro

// The wall-clock suite: host-time cost of the harness itself, as
// opposed to the virtual-time results of bench_test.go. Run with
//
//	go test -bench 'BenchmarkWallclock' -benchtime 1x .
//
// and regenerate the machine-readable trajectory artifact with
//
//	go run ./cmd/armci-bench -wallclock results
//
// ops/s and events/s metrics are the numbers the ISSUE's ≥2x
// acceptance bar is measured on.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/harness"
)

// wallclockIssue runs one issue-rate benchmark: b.N operations through
// the full armci op → GMR translation → datatype → epoch → sim event
// path, reporting operations per host second.
func wallclockIssue(b *testing.B, run func(nops int) (opsDur float64, err error)) {
	b.ReportAllocs()
	sec, err := run(b.N)
	if err != nil {
		b.Fatal(err)
	}
	if sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "ops/s")
	}
}

func BenchmarkWallclockContigIssue(b *testing.B) {
	plat := harness.TestPlatform()
	wallclockIssue(b, func(nops int) (float64, error) {
		d, err := bench.WallclockContigIssue(plat, nops, 512)
		return d.Seconds(), err
	})
}

func BenchmarkWallclockStridedIssue(b *testing.B) {
	plat := harness.TestPlatform()
	wallclockIssue(b, func(nops int) (float64, error) {
		d, err := bench.WallclockStridedIssue(plat, nops, 64, 64)
		return d.Seconds(), err
	})
}

func BenchmarkWallclockIOVIssue(b *testing.B) {
	plat := harness.TestPlatform()
	wallclockIssue(b, func(nops int) (float64, error) {
		d, err := bench.WallclockIOVIssue(plat, nops, 64, 64)
		return d.Seconds(), err
	})
}

// BenchmarkWallclockPackSubarray measures the derived-datatype
// pack/unpack kernels on the subarray shape the direct strided method
// produces: 256 segments of 128 bytes.
func BenchmarkWallclockPackSubarray(b *testing.B) {
	t := bench.WallclockPackType(256, 128)
	src := make([]byte, t.Span())
	dense := make([]byte, t.Size())
	b.ReportAllocs()
	b.SetBytes(int64(2 * t.Size()))
	b.ResetTimer()
	d := bench.WallclockPackRoundtrip(t, src, dense, b.N)
	if s := d.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "ops/s")
	}
}

// wallclockEvents measures raw scheduler throughput at a rank count.
func wallclockEvents(b *testing.B, nranks int) {
	b.ReportAllocs()
	var events int64
	var secs float64
	for i := 0; i < b.N; i++ {
		ev, d, err := bench.WallclockEvents(nranks, 400)
		if err != nil {
			b.Fatal(err)
		}
		events += ev
		secs += d.Seconds()
	}
	if secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/s")
	}
}

func BenchmarkWallclockEvents64(b *testing.B)  { wallclockEvents(b, 64) }
func BenchmarkWallclockEvents128(b *testing.B) { wallclockEvents(b, 128) }
func BenchmarkWallclockEvents256(b *testing.B) { wallclockEvents(b, 256) }
