// Groups: processor groups and noncollective group creation
// (SectionV.A). A dynamic subset of processes forms a group *without*
// the participation of the others — the recursive intercommunicator
// create-and-merge algorithm — then allocates a group-scoped global
// array and works on it while the remaining processes do something
// else entirely. This is the capability that lets GA applications run
// multi-level parallelism (e.g. NWChem's task groups).
//
//	go run ./examples/groups [-impl native|armci-mpi] [-np 12]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/harness"
	"repro/internal/platform"
	"repro/internal/sim"
)

func main() {
	implFlag := flag.String("impl", "armci-mpi", "ARMCI implementation: native, armci-mpi, armci-ds, or dartmpi")
	np := flag.Int("np", 12, "number of simulated processes")
	platName := flag.String("platform", platform.InfiniBand, "simulated platform")
	flag.Parse()

	impl, err := harness.ParseImpl(*implFlag)
	if err != nil {
		log.Fatal(err)
	}
	plat, err := platform.Lookup(*platName)
	if err != nil {
		log.Fatal(err)
	}
	job, err := core.NewJob(plat, *np, impl, armcimpi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	err = job.Eng.Run(*np, func(p *sim.Proc) {
		rt := job.Runtime(p)
		env := ga.NewEnv(rt, job.MpiWorld.Rank(p))
		me := env.Me()

		// Even ranks form a group WITHOUT the odd ranks participating:
		// the odd ranks never enter the group-creation call.
		if me%2 == 0 {
			var members []int
			for r := 0; r < env.Nprocs(); r += 2 {
				members = append(members, r)
			}
			g, err := rt.GroupCreate(members) // noncollective!
			if err != nil {
				log.Fatal(err)
			}
			a, err := env.CreateOnGroup(g, "evens", ga.F64, []int{32, 32})
			if err != nil {
				log.Fatal(err)
			}
			// Group rank 0 writes; the last member reads one-sidedly.
			if g.RankOf(me) == 0 {
				vals := make([]float64, 32*32)
				for i := range vals {
					vals[i] = float64(i) / 2
				}
				if err := a.Put([]int{0, 0}, []int{31, 31}, vals); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("[%s] group of %d even ranks built noncollectively; data written\n",
					rt.Name(), g.Size())
			}
			// Synchronize within the group only.
			rt.Fence(g.AbsoluteID(0))
			armci.GroupCommOf(g).Barrier()
			if g.RankOf(me) == g.Size()-1 {
				probe := make([]float64, 4)
				if err := a.Get([]int{31, 28}, []int{31, 31}, probe); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("[%s] last member read tail values %.1f..%.1f via absolute ids\n",
					rt.Name(), probe[0], probe[3])
			}
			armci.GroupCommOf(g).Barrier()
			if err := a.Destroy(); err != nil {
				log.Fatal(err)
			}
		} else {
			// Odd ranks proceed independently — they are untouched by the
			// even group's creation, allocation, and communication.
			p.Elapse(50 * sim.Microsecond)
		}
		env.Sync() // world-wide rendezvous at the end
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated time: %v\n", job.Eng.Stats().FinalTime)
}
