// Matmul: a distributed dense matrix multiply C = A x B over Global
// Arrays, in the block get / local dgemm / accumulate style that
// NWChem's tensor contractions use (the workload class the paper's
// introduction motivates). Tasks are scheduled dynamically through the
// NXTVAL counter, so load balance emerges from GA_Read_inc.
//
//	go run ./examples/matmul [-impl native|armci-mpi] [-np 16] [-n 96]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/armcimpi"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/harness"
	"repro/internal/platform"
	"repro/internal/sim"
)

func main() {
	implFlag := flag.String("impl", "armci-mpi", "ARMCI implementation: native, armci-mpi, armci-ds, or dartmpi")
	np := flag.Int("np", 16, "number of simulated processes")
	n := flag.Int("n", 96, "matrix dimension")
	blk := flag.Int("blk", 24, "tile size")
	platName := flag.String("platform", platform.CrayXE6, "simulated platform")
	flag.Parse()

	impl, err := harness.ParseImpl(*implFlag)
	if err != nil {
		log.Fatal(err)
	}
	plat, err := platform.Lookup(*platName)
	if err != nil {
		log.Fatal(err)
	}
	if *n%*blk != 0 {
		log.Fatalf("n (%d) must be a multiple of blk (%d)", *n, *blk)
	}
	job, err := core.NewJob(plat, *np, impl, armcimpi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	N, B := *n, *blk
	nb := N / B
	err = job.Eng.Run(*np, func(p *sim.Proc) {
		rt := job.Runtime(p)
		env := ga.NewEnv(rt, job.MpiWorld.Rank(p))
		gaA, err := env.Create("A", ga.F64, []int{N, N})
		if err != nil {
			log.Fatal(err)
		}
		gaB, err := env.Create("B", ga.F64, []int{N, N})
		if err != nil {
			log.Fatal(err)
		}
		gaC, err := env.Create("C", ga.F64, []int{N, N})
		if err != nil {
			log.Fatal(err)
		}
		counter, err := env.Create("nxtval", ga.I64, []int{1})
		if err != nil {
			log.Fatal(err)
		}
		// Initialize A and B from closed-form entries so the result is
		// checkable: A[i][j] = i+j, B[i][j] = (i == j) ? 2 : 0, hence
		// C = 2A.
		fill := func(a *ga.Array, f func(i, j int) float64) {
			if blk, err := a.Access(); err == nil {
				d := blk.Dims()
				for i := 0; i < d[0]; i++ {
					for j := 0; j < d[1]; j++ {
						blk.SetF64(f(blk.Lo[0]+i, blk.Lo[1]+j), i, j)
					}
				}
				if err := blk.Release(); err != nil {
					log.Fatal(err)
				}
			}
			env.Sync()
		}
		fill(gaA, func(i, j int) float64 { return float64(i + j) })
		fill(gaB, func(i, j int) float64 {
			if i == j {
				return 2
			}
			return 0
		})

		// Dynamically scheduled tile loop: task t = (ib, jb, kb).
		start := p.Now()
		tasks := 0
		bufA := make([]float64, B*B)
		bufB := make([]float64, B*B)
		bufC := make([]float64, B*B)
		for {
			t, err := counter.ReadInc([]int{0}, 1)
			if err != nil {
				log.Fatal(err)
			}
			if t >= int64(nb*nb*nb) {
				break
			}
			ib := int(t) / (nb * nb)
			jb := (int(t) / nb) % nb
			kb := int(t) % nb
			get := func(a *ga.Array, r, c int, dst []float64) {
				if err := a.Get([]int{r * B, c * B}, []int{r*B + B - 1, c*B + B - 1}, dst); err != nil {
					log.Fatal(err)
				}
			}
			get(gaA, ib, kb, bufA)
			get(gaB, kb, jb, bufB)
			for i := range bufC {
				bufC[i] = 0
			}
			for i := 0; i < B; i++ {
				for k := 0; k < B; k++ {
					aik := bufA[i*B+k]
					if aik == 0 {
						continue
					}
					for j := 0; j < B; j++ {
						bufC[i*B+j] += aik * bufB[k*B+j]
					}
				}
			}
			job.M.Compute(p, 2*float64(B)*float64(B)*float64(B))
			if err := gaC.Acc([]int{ib * B, jb * B}, []int{ib*B + B - 1, jb*B + B - 1}, bufC, 1.0); err != nil {
				log.Fatal(err)
			}
			tasks++
		}
		env.Sync()

		// Verify C == 2A by sampling, and report.
		if env.Me() == 0 {
			probe := make([]float64, N)
			if err := gaC.Get([]int{N / 2, 0}, []int{N / 2, N - 1}, probe); err != nil {
				log.Fatal(err)
			}
			worst := 0.0
			for j, v := range probe {
				want := 2 * float64(N/2+j)
				if d := math.Abs(v - want); d > worst {
					worst = d
				}
			}
			fmt.Printf("[%s] C = A x B verified (max error %.2g) in %v simulated\n",
				rt.Name(), worst, p.Now()-start)
		}
		env.Sync()
		for _, a := range []*ga.Array{gaA, gaB, gaC, counter} {
			if err := a.Destroy(); err != nil {
				log.Fatal(err)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tiles, simulated time %v\n", nb*nb*nb, job.Eng.Stats().FinalTime)
}
