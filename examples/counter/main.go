// Counter: dynamic load balancing with the NXTVAL shared counter and
// mutex-protected critical sections — the asynchronous, data-driven
// synchronization of SectionV.D. Processes with deliberately unequal
// speeds drain a task bag through atomic fetch-and-add; a mutex guards
// a shared log structure. Run it on both runtimes to compare the cost
// of native NIC atomics against ARMCI-MPI's mutex-based emulation (and
// try -mpi3 for the SectionVIII.B extension).
//
//	go run ./examples/counter [-impl native|armci-mpi] [-mpi3]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/armci"
	"repro/internal/armcimpi"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/harness"
	"repro/internal/platform"
	"repro/internal/sim"
)

func main() {
	implFlag := flag.String("impl", "armci-mpi", "ARMCI implementation: native, armci-mpi, armci-ds, or dartmpi")
	np := flag.Int("np", 8, "number of simulated processes")
	tasks := flag.Int("tasks", 200, "number of tasks in the bag")
	mpi3 := flag.Bool("mpi3", false, "use MPI-3 fetch-and-op for the counter (armci-mpi only)")
	platName := flag.String("platform", platform.CrayXT5, "simulated platform")
	flag.Parse()

	impl, err := harness.ParseImpl(*implFlag)
	if err != nil {
		log.Fatal(err)
	}
	plat, err := platform.Lookup(*platName)
	if err != nil {
		log.Fatal(err)
	}
	opt := armcimpi.DefaultOptions()
	opt.UseMPI3 = *mpi3
	job, err := core.NewJob(plat, *np, impl, opt)
	if err != nil {
		log.Fatal(err)
	}
	total := *tasks
	perRank := make([]int, *np)
	err = job.Eng.Run(*np, func(p *sim.Proc) {
		rt := job.Runtime(p)
		env := ga.NewEnv(rt, job.MpiWorld.Rank(p))
		counter, err := env.Create("nxtval", ga.I64, []int{1})
		if err != nil {
			log.Fatal(err)
		}
		logArr, err := env.Create("log", ga.F64, []int{total})
		if err != nil {
			log.Fatal(err)
		}
		mux, err := rt.CreateMutexes(1)
		if err != nil {
			log.Fatal(err)
		}

		// Heterogeneous speeds: rank r takes (1 + r%3) microseconds per
		// task; the counter balances the load automatically.
		speed := sim.Time(1+env.Me()%3) * sim.Microsecond
		buf := make([]float64, 1)
		for {
			t, err := counter.ReadInc([]int{0}, 1)
			if err != nil {
				log.Fatal(err)
			}
			if t >= int64(total) {
				break
			}
			p.Elapse(speed) // "compute"
			// Mutex-guarded update of the shared log entry.
			mux.Lock(0, 0)
			buf[0] = float64(env.Me())
			if err := logArr.Put([]int{int(t)}, []int{int(t)}, buf); err != nil {
				log.Fatal(err)
			}
			mux.Unlock(0, 0)
			perRank[env.Me()]++
		}
		env.Sync()
		if env.Me() == 0 {
			// Verify every task was logged by exactly one rank.
			all := make([]float64, total)
			if err := logArr.Get([]int{0}, []int{total - 1}, all); err != nil {
				log.Fatal(err)
			}
			claimed := 0
			for _, v := range all {
				if v >= 0 && v < float64(*np) {
					claimed++
				}
			}
			fmt.Printf("[%s] %d/%d tasks completed and logged\n", rt.Name(), claimed, total)
		}
		env.Sync()
		if err := mux.Destroy(); err != nil {
			log.Fatal(err)
		}
		if err := counter.Destroy(); err != nil {
			log.Fatal(err)
		}
		if err := logArr.Destroy(); err != nil {
			log.Fatal(err)
		}
		_ = armci.FetchAndAdd
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tasks per rank (speeds cycle 1,2,3 us): %v\n", perRank)
	fmt.Printf("simulated time: %v\n", job.Eng.Stats().FinalTime)
}
