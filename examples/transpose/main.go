// Transpose: an out-of-place distributed matrix transpose, B = A^T,
// implemented with strided one-sided puts — the noncontiguous access
// pattern of SectionVI that Figure 4 benchmarks. Each process reads its
// local block of A through direct local access and writes the
// transposed patch into B with one strided ARMCI operation per target,
// comparing the configured strided methods.
//
//	go run ./examples/transpose [-impl native|armci-mpi] [-method direct|batched|conservative]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/armcimpi"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/harness"
	"repro/internal/platform"
	"repro/internal/sim"
)

func main() {
	implFlag := flag.String("impl", "armci-mpi", "ARMCI implementation: native, armci-mpi, armci-ds, or dartmpi")
	method := flag.String("method", "direct", "strided method for armci-mpi: direct, iov-direct, batched, conservative")
	np := flag.Int("np", 8, "number of simulated processes")
	n := flag.Int("n", 128, "matrix dimension")
	platName := flag.String("platform", platform.BlueGeneP, "simulated platform")
	flag.Parse()

	impl, err := harness.ParseImpl(*implFlag)
	if err != nil {
		log.Fatal(err)
	}
	plat, err := platform.Lookup(*platName)
	if err != nil {
		log.Fatal(err)
	}
	opt := armcimpi.DefaultOptions()
	switch *method {
	case "direct":
		opt.StridedMethod = core.MethodDirect
	case "iov-direct":
		opt.StridedMethod = core.MethodIOVDirect
	case "batched":
		opt.StridedMethod = core.MethodBatched
	case "conservative":
		opt.StridedMethod = core.MethodConservative
	default:
		log.Fatalf("unknown -method %q", *method)
	}
	job, err := core.NewJob(plat, *np, impl, opt)
	if err != nil {
		log.Fatal(err)
	}
	N := *n
	err = job.Eng.Run(*np, func(p *sim.Proc) {
		rt := job.Runtime(p)
		env := ga.NewEnv(rt, job.MpiWorld.Rank(p))
		a, err := env.Create("A", ga.F64, []int{N, N})
		if err != nil {
			log.Fatal(err)
		}
		b, err := env.Create("B", ga.F64, []int{N, N})
		if err != nil {
			log.Fatal(err)
		}
		// Fill A[i][j] = i*N + j via direct local access.
		if blk, err := a.Access(); err == nil {
			d := blk.Dims()
			for i := 0; i < d[0]; i++ {
				for j := 0; j < d[1]; j++ {
					blk.SetF64(float64((blk.Lo[0]+i)*N+blk.Lo[1]+j), i, j)
				}
			}
			if err := blk.Release(); err != nil {
				log.Fatal(err)
			}
		}
		env.Sync()

		// Transpose: each rank reads its A block and writes the
		// transposed patch into B (a strided put per destination owner).
		start := p.Now()
		lo, hi, ok := a.Distribution(env.Me())
		if ok {
			rows, cols := hi[0]-lo[0]+1, hi[1]-lo[1]+1
			vals := make([]float64, rows*cols)
			if err := a.Get(lo, hi, vals); err != nil {
				log.Fatal(err)
			}
			tr := make([]float64, cols*rows)
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					tr[j*rows+i] = vals[i*cols+j]
				}
			}
			if err := b.Put([]int{lo[1], lo[0]}, []int{hi[1], hi[0]}, tr); err != nil {
				log.Fatal(err)
			}
		}
		env.Sync()
		elapsed := p.Now() - start

		// Verify B[j][i] == A[i][j] by sampling a row of B.
		if env.Me() == 0 {
			probe := make([]float64, N)
			if err := b.Get([]int{3, 0}, []int{3, N - 1}, probe); err != nil {
				log.Fatal(err)
			}
			okAll := true
			for i, v := range probe {
				if v != float64(i*N+3) {
					okAll = false
					break
				}
			}
			fmt.Printf("[%s/%s] transpose %dx%d verified=%v, %v simulated\n",
				rt.Name(), *method, N, N, okAll, elapsed)
		}
		env.Sync()
		if err := a.Destroy(); err != nil {
			log.Fatal(err)
		}
		if err := b.Destroy(); err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
