// Quickstart: create a distributed global array over a simulated
// cluster, write a patch from one process, read it from another, and
// accumulate into it from everyone — the GA model of SectionII.B,
// runnable on either ARMCI implementation.
//
//	go run ./examples/quickstart [-impl native|armci-mpi] [-np 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/armcimpi"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/harness"
	"repro/internal/platform"
	"repro/internal/sim"
)

func main() {
	implFlag := flag.String("impl", "armci-mpi", "ARMCI implementation: native, armci-mpi, armci-ds, or dartmpi")
	np := flag.Int("np", 8, "number of simulated processes")
	platName := flag.String("platform", platform.InfiniBand, "simulated platform")
	flag.Parse()

	impl, err := harness.ParseImpl(*implFlag)
	if err != nil {
		log.Fatal(err)
	}
	plat, err := platform.Lookup(*platName)
	if err != nil {
		log.Fatal(err)
	}
	job, err := core.NewJob(plat, *np, impl, armcimpi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	err = job.Eng.Run(*np, func(p *sim.Proc) {
		rt := job.Runtime(p)
		env := ga.NewEnv(rt, job.MpiWorld.Rank(p))
		me := env.Me()

		// Collectively create a 64x64 double-precision global array.
		a, err := env.Create("demo", ga.F64, []int{64, 64})
		if err != nil {
			log.Fatal(err)
		}

		// Process 0 writes a patch spanning several owners (Figure 2's
		// fan-out happens underneath).
		if me == 0 {
			vals := make([]float64, 32*32)
			for i := range vals {
				vals[i] = float64(i)
			}
			if err := a.Put([]int{16, 16}, []int{47, 47}, vals); err != nil {
				log.Fatal(err)
			}
			patches, _ := a.LocateRegion([]int{16, 16}, []int{47, 47})
			fmt.Printf("[%s] put fanned out to %d owner patches\n", rt.Name(), len(patches))
		}
		env.Sync()

		// Another process reads it back one-sidedly.
		if me == env.Nprocs()-1 {
			out := make([]float64, 32*32)
			if err := a.Get([]int{16, 16}, []int{47, 47}, out); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%s] rank %d read the patch: corner values %.0f, %.0f\n",
				rt.Name(), me, out[0], out[len(out)-1])
		}
		env.Sync()

		// Everyone accumulates 1.0 into the full array (atomic).
		ones := make([]float64, 64*64)
		for i := range ones {
			ones[i] = 1
		}
		if err := a.Acc([]int{0, 0}, []int{63, 63}, ones, 1.0); err != nil {
			log.Fatal(err)
		}
		env.Sync()
		if me == 0 {
			probe := make([]float64, 1)
			if err := a.Get([]int{0, 0}, []int{0, 0}, probe); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%s] after %d concurrent accumulates, a[0,0] = %.0f\n",
				rt.Name(), env.Nprocs(), probe[0])
		}
		env.Sync()
		if err := a.Destroy(); err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated time: %v\n", job.Eng.Stats().FinalTime)
}
