// Command benchdiff compares two benchmark artifacts (the BENCH_*,
// PROF_*, and CRIT_* JSON files armci-bench writes) and exits nonzero
// when they differ.
//
// Usage:
//
//	benchdiff [-tol frac] golden candidate
//
// By default the comparison is byte-exact — the contract every guarded
// virtual-time artifact in results/ is held to — but unlike cmp a
// mismatch is reported as a structural JSON diff (which keys and values
// moved, not which byte), so a CI failure names the series and points
// that drifted.
//
// -tol relaxes number comparison to a relative tolerance, for
// host-time trajectory artifacts (wallclock, parallel-speedup) whose
// values are machine dependent: shapes and labels must still match
// exactly, numbers may drift by the given fraction.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

// maxReported caps the mismatch lines printed; the total is always
// reported, so a wholesale divergence stays readable.
const maxReported = 25

func main() {
	tol := flag.Float64("tol", 0, "relative tolerance for numeric values (0 = byte-exact)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol frac] golden candidate")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if *tol < 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -tol must be non-negative")
		os.Exit(2)
	}
	golden, candidate := flag.Arg(0), flag.Arg(1)
	diffs, err := compareFiles(golden, candidate, *tol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(diffs) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %s and %s differ (%d mismatches):\n", golden, candidate, len(diffs))
	for i, d := range diffs {
		if i == maxReported {
			fmt.Fprintf(os.Stderr, "  ... %d more\n", len(diffs)-maxReported)
			break
		}
		fmt.Fprintln(os.Stderr, " ", d)
	}
	os.Exit(1)
}

// compareFiles reads both artifacts and returns the mismatch list.
// With tol == 0 a byte-equal pair short-circuits; a byte difference is
// then explained structurally (or, for non-JSON content, reported as
// the raw byte divergence).
func compareFiles(golden, candidate string, tol float64) ([]string, error) {
	gb, err := os.ReadFile(golden)
	if err != nil {
		return nil, err
	}
	cb, err := os.ReadFile(candidate)
	if err != nil {
		return nil, err
	}
	if bytes.Equal(gb, cb) {
		return nil, nil
	}
	var gv, cv any
	if json.Unmarshal(gb, &gv) != nil || json.Unmarshal(cb, &cv) != nil {
		// Not JSON (or broken JSON): all we can say is where the bytes
		// diverge.
		return []string{fmt.Sprintf("content differs at byte %d (not valid JSON on both sides)", firstByteDiff(gb, cb))}, nil
	}
	d := &differ{tol: tol}
	d.compare("$", gv, cv)
	if len(d.diffs) == 0 && tol == 0 {
		// Structurally identical but byte-different (formatting,
		// key order in source text): still a guarded-artifact failure.
		d.diffs = append(d.diffs, fmt.Sprintf("values match but bytes differ at offset %d (formatting drift)", firstByteDiff(gb, cb)))
	}
	return d.diffs, nil
}

func firstByteDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

type differ struct {
	tol   float64
	diffs []string
}

func (d *differ) addf(format string, args ...any) {
	d.diffs = append(d.diffs, fmt.Sprintf(format, args...))
}

// compare walks both JSON values in parallel, recording every
// structural or value mismatch with its path.
func (d *differ) compare(path string, g, c any) {
	switch gv := g.(type) {
	case map[string]any:
		cv, ok := c.(map[string]any)
		if !ok {
			d.addf("%s: object in golden, %s in candidate", path, kind(c))
			return
		}
		keys := make([]string, 0, len(gv))
		for k := range gv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, ok := cv[k]; !ok {
				d.addf("%s.%s: missing in candidate", path, k)
				continue
			}
			d.compare(path+"."+k, gv[k], cv[k])
		}
		extra := make([]string, 0)
		for k := range cv {
			if _, ok := gv[k]; !ok {
				extra = append(extra, k)
			}
		}
		sort.Strings(extra)
		for _, k := range extra {
			d.addf("%s.%s: extra in candidate", path, k)
		}
	case []any:
		cv, ok := c.([]any)
		if !ok {
			d.addf("%s: array in golden, %s in candidate", path, kind(c))
			return
		}
		if len(gv) != len(cv) {
			d.addf("%s: length %d in golden, %d in candidate", path, len(gv), len(cv))
		}
		n := len(gv)
		if len(cv) < n {
			n = len(cv)
		}
		for i := 0; i < n; i++ {
			d.compare(fmt.Sprintf("%s[%d]", path, i), gv[i], cv[i])
		}
	case float64:
		cf, ok := c.(float64)
		if !ok {
			d.addf("%s: number in golden, %s in candidate", path, kind(c))
			return
		}
		if !d.numEqual(gv, cf) {
			d.addf("%s: %v in golden, %v in candidate", path, gv, cf)
		}
	default:
		if g != c {
			d.addf("%s: %v in golden, %v in candidate", path, g, c)
		}
	}
}

// numEqual compares two numbers under the tolerance: exact at tol 0,
// otherwise |g-c| <= tol * max(|g|, |c|) (so a zero golden value still
// admits a proportionally small candidate).
func (d *differ) numEqual(g, c float64) bool {
	if g == c {
		return true
	}
	if d.tol == 0 {
		return false
	}
	scale := math.Max(math.Abs(g), math.Abs(c))
	return math.Abs(g-c) <= d.tol*scale
}

func kind(v any) string {
	switch v.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case float64:
		return "number"
	case string:
		return "string"
	case bool:
		return "bool"
	case nil:
		return "null"
	}
	return "?"
}
