// Command armci-bench regenerates the communication figures of the
// paper (Figures 3, 4, and 5) and the ablation tables on the simulated
// platforms.
//
// Usage:
//
//	armci-bench -fig 3 [-platform bgp|ib|xt5|xe6] [-quick]
//	armci-bench -fig 4 [-platform ...] [-op get|put|acc] [-quick]
//	armci-bench -fig 5 [-quick]
//	armci-bench -fig ablation-shm [-platform ...] [-quick]
//	armci-bench -fig ablation-nbfanout [-platform ...] [-quick]
//	armci-bench -fig ablation-locality [-platform ...] [-quick]
//	armci-bench -fig ablations
//	armci-bench -fig table2
//	armci-bench -fig wallclock
//	armci-bench -fig scale [-quick] [-sched goroutine|continuation|parallel]
//	armci-bench -fig parallel-speedup [-quick] [-shards n]
//
// With no -platform, figure sweeps run on all four platforms. A
// combined -fig figN-plat spelling (e.g. -fig fig3-ib) selects one
// figure on one platform, matching the BENCH_<name>.json artifact
// names. Output is gnuplot-style columns on stdout.
//
// The wallclock figure measures the simulator harness's own host-time
// cost (issue rates, pack throughput, scheduler event rates). Unlike
// every other figure it is machine dependent and NOT byte-deterministic,
// so its JSON export is a trajectory record, not a guarded artifact. It
// is excluded from -fig all for that reason.
//
// The scale figure sweeps the CCSD proxy and GA fan-out shapes to
// 4096-16384 simulated ranks on the Cray XT5 model. It runs under the
// engine's continuation scheduler by default (goroutine-per-rank does
// not fit 16k ranks on a laptop-class host); -sched selects the mode
// explicitly, for every figure. Scale is excluded from -fig all
// because its jobs dwarf every other sweep.
//
// The parallel-speedup figure sweeps the sharded parallel engine
// (-sched parallel) over host shard counts on the 16k-rank scale
// exchange, reporting events per host second and the speedup over one
// shard. -shards caps the sweep (default 8). Like wallclock it is
// host-time, machine dependent, and excluded from -fig all; its JSON
// export is a trajectory record, not a guarded artifact. Full-stack
// jobs under -sched parallel always run as a single shard (identical
// schedules to the other modes); only shard-confined sweeps fan out.
//
// Runtime tuning (applied to every job a sweep constructs; an
// ablation's own axis still overrides these):
//
//	-batch n            batched-method operations per epoch (0 = unlimited)
//	-strided-method m   conservative, batched, iov-direct, direct, or auto
//	-iov-method m       same names, for PutV/GetV/AccV
//	-runtime name       add this ARMCI runtime as an extra series to the
//	                    Figure 3 comparison (native, armci-mpi, armci-ds,
//	                    or dartmpi)
//
// Observability (figure sweeps 3, 4, and 5):
//
//	-stats         print per-rank metrics (lock waits, bytes moved
//	               contiguous vs packed, epoch flushes, ...) after the runs
//	-trace f.json  write a Chrome trace_event file viewable in
//	               chrome://tracing or https://ui.perfetto.dev
//	-profile       attribute each operation's virtual time to phases
//	               (lock wait, pack, shm copy, wire, target processing)
//	               and print an mpiP-style report: top operations, phase
//	               percentages, hottest rank pairs, link utilization.
//	               With -json dir, also writes dir/PROF_<fig>.json
//	-critpath      record the happens-before graph of every job and
//	               print the exact critical path: which operations,
//	               wait chains, and ranks the end-to-end virtual time
//	               actually decomposes into (the per-job segment sums
//	               equal the makespans exactly), side by side with the
//	               flat profiler shares. With -json dir, also writes
//	               dir/CRIT_<fig>.json
//	-json dir      also write each figure as dir/BENCH_<name>.json
//
// All output is in deterministic virtual time: repeat runs of the same
// configuration produce byte-identical stats, trace, and JSON files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/armcimpi"
	"repro/internal/bench"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
)

// scaleSched, when set by an explicit -sched flag, overrides the scale
// sweep's default continuation mode.
var scaleSched *sim.Mode

func main() {
	fig := flag.String("fig", "3", "what to regenerate: 3, 4, 5, 6? use nwchem-bench; ablation-shm, ablations, table2, all")
	plat := flag.String("platform", "", "platform (bgp, ib, xt5, xe6); empty = all")
	op := flag.String("op", "", "operation filter for fig 4 (get, put, acc); empty = all")
	quick := flag.Bool("quick", false, "reduced sweeps")
	stats := flag.Bool("stats", false, "print per-rank observability metrics after the figure sweeps")
	trace := flag.String("trace", "", "write a Chrome trace_event JSON file covering the figure sweeps")
	profile := flag.Bool("profile", false, "attribute per-operation virtual time to phases and print an mpiP-style report")
	critpath := flag.Bool("critpath", false, "record dependence chains and print the exact critical-path report (with -json, also CRIT_<fig>.json)")
	jsonDir := flag.String("json", "", "also write each figure as BENCH_<name>.json into this directory")
	batch := flag.Int("batch", -1, "batched-method operations per epoch (0 = unlimited; -1 = default)")
	stridedMethod := flag.String("strided-method", "", "strided transfer method (conservative, batched, iov-direct, direct, auto)")
	iovMethod := flag.String("iov-method", "", "I/O vector transfer method (conservative, batched, iov-direct, auto)")
	runtimeName := flag.String("runtime", "",
		fmt.Sprintf("extra ARMCI runtime series for the Figure 3 comparison (%s)",
			strings.Join(harness.ImplNames(), ", ")))
	sched := flag.String("sched", "",
		fmt.Sprintf("engine execution mode (%s); -fig scale defaults to continuation",
			strings.Join(sim.ModeNames(), ", ")))
	shards := flag.Int("shards", 0,
		"host shard cap for -sched parallel (parallel-speedup sweep; full-stack jobs always run one shard)")
	flag.Parse()

	schedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sched" {
			schedSet = true
		}
	})
	// Scheduler flags are validated before any job is constructed, so a
	// typo fails fast with the mode list instead of mid-sweep.
	if err := installSched(*sched, schedSet, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "armci-bench:", err)
		os.Exit(1)
	}
	if err := checkObsSharding(*shards, *stats, *profile, *critpath, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "armci-bench:", err)
		os.Exit(1)
	}

	if *runtimeName != "" {
		impl, err := harness.ParseImpl(*runtimeName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "armci-bench:", err)
			os.Exit(1)
		}
		bench.ExtraImpls = append(bench.ExtraImpls, impl)
	}
	if err := installTweak(*batch, *stridedMethod, *iovMethod); err != nil {
		fmt.Fprintln(os.Stderr, "armci-bench:", err)
		os.Exit(1)
	}
	if err := run(*fig, *plat, *op, *quick, *stats, *profile, *critpath, *trace, *jsonDir); err != nil {
		fmt.Fprintln(os.Stderr, "armci-bench:", err)
		os.Exit(1)
	}
}

// installSched validates the -sched/-shards flags and installs them as
// the harness-wide scheduler configuration. It runs before any sweep
// constructs a job, so invalid combinations fail fast: an unknown mode
// is rejected with the full mode list (sim.ParseMode's error), and a
// shard count above one demands the parallel engine.
func installSched(sched string, schedSet bool, shards int) error {
	if shards < 0 {
		return fmt.Errorf("-shards %d: shard count must be positive", shards)
	}
	if schedSet {
		mode, err := sim.ParseMode(sched)
		if err != nil {
			return err
		}
		harness.Sched = mode
		scaleSched = &mode
	}
	if shards > 1 && harness.Sched != sim.ModeParallel {
		return fmt.Errorf("-shards %d requires -sched parallel (current mode %s)", shards, harness.Sched)
	}
	harness.Shards = shards
	return nil
}

// checkObsSharding rejects, at parse time, flag combinations that would
// attach a single observability recorder to a multi-shard parallel run.
// armci-bench's recorder-backed sweeps are full-stack jobs, which always
// execute as one shard regardless of -shards; the only sweep that fans
// out (-fig parallel-speedup) takes no recorder. Rather than silently
// ignore either flag, the conflict is an error naming every flag
// involved. (Multi-shard critical-path recording itself is supported —
// the bench test suite drives it through obs.Sharded and its
// deterministic per-shard merge — it is only this CLI pairing that has
// no meaning.)
func checkObsSharding(shards int, stats, profile, critpath bool, trace string) error {
	if shards <= 1 {
		return nil
	}
	var set []string
	if stats {
		set = append(set, "-stats")
	}
	if profile {
		set = append(set, "-profile")
	}
	if critpath {
		set = append(set, "-critpath")
	}
	if trace != "" {
		set = append(set, "-trace")
	}
	if len(set) == 0 {
		return nil
	}
	return fmt.Errorf("%s cannot be combined with -shards %d: observability attaches one recorder per sweep, and the multi-shard parallel-speedup sweep runs without one (full-stack figure sweeps always execute as a single shard; rerun with -shards 1 or drop %s)",
		strings.Join(set, "/"), shards, strings.Join(set, "/"))
}

// installTweak translates the runtime-tuning flags into the bench
// package's Options hook. With no flag set, no hook is installed and
// the sweeps run on pure defaults.
func installTweak(batch int, stridedMethod, iovMethod string) error {
	if batch < 0 && stridedMethod == "" && iovMethod == "" {
		return nil
	}
	var sm, im armcimpi.Method
	var err error
	if stridedMethod != "" {
		if sm, err = armcimpi.ParseMethod(stridedMethod); err != nil {
			return err
		}
	}
	if iovMethod != "" {
		if im, err = armcimpi.ParseMethod(iovMethod); err != nil {
			return err
		}
	}
	bench.Tweak = func(opt *armcimpi.Options) {
		if batch >= 0 {
			opt.BatchSize = batch
		}
		if stridedMethod != "" {
			opt.StridedMethod = sm
		}
		if iovMethod != "" {
			opt.IOVMethod = im
		}
	}
	return nil
}

func platforms(name string) ([]*platform.Platform, error) {
	if name == "" {
		return platform.All(), nil
	}
	p, err := platform.Lookup(name)
	if err != nil {
		return nil, err
	}
	return []*platform.Platform{p}, nil
}

func run(fig, plat, opFilter string, quick, stats, profile, critpath bool, traceFile, jsonDir string) error {
	// Accept the combined figN-plat spelling used by the guarded
	// artifact names: -fig fig3-ib == -fig 3 -platform ib.
	profName := fig
	if rest, ok := strings.CutPrefix(fig, "fig"); ok {
		if i := strings.IndexByte(rest, '-'); i > 0 {
			figPlat := rest[i+1:]
			if plat != "" && plat != figPlat {
				return fmt.Errorf("-fig %s conflicts with -platform %s", fig, plat)
			}
			fig, plat = rest[:i], figPlat
		}
	}
	switch fig {
	case "3", "4", "5", "ablation-shm", "ablation-nbfanout", "ablation-locality", "ablations", "table2", "wallclock", "scale", "parallel-speedup", "all":
	default:
		return fmt.Errorf("unknown -fig %q", fig)
	}
	var rec *obs.Recorder
	if stats || profile || critpath || traceFile != "" {
		rec = obs.New(obs.Options{Trace: traceFile != "", Profile: profile, CritPath: critpath})
	}
	if err := runFigures(fig, plat, opFilter, quick, rec, jsonDir); err != nil {
		return err
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if stats {
		rec.WriteStats(os.Stdout)
	}
	if profile {
		pr := rec.Prof()
		if err := pr.WriteReport(os.Stdout); err != nil {
			return err
		}
		if jsonDir != "" {
			path := filepath.Join(jsonDir, "PROF_"+profName+".json")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := pr.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "armci-bench: wrote", path)
		}
	}
	if critpath {
		cr := rec.Crit()
		if err := cr.WriteReport(os.Stdout); err != nil {
			return err
		}
		if jsonDir != "" {
			path := filepath.Join(jsonDir, "CRIT_"+profName+".json")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := cr.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "armci-bench: wrote", path)
		}
	}
	return nil
}

// emit prints a figure and, when a JSON directory was requested, also
// writes its machine-readable BENCH_<name>.json form.
func emit(f *bench.Figure, jsonDir string) error {
	f.Print(os.Stdout)
	if jsonDir == "" {
		return nil
	}
	path, err := f.WriteJSONFile(jsonDir)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "armci-bench: wrote", path)
	return nil
}

func runFigures(fig, plat, opFilter string, quick bool, rec *obs.Recorder, jsonDir string) error {
	if fig == "table2" || fig == "all" {
		bench.Table2(os.Stdout)
		if fig == "table2" {
			return nil
		}
	}
	if fig == "3" || fig == "all" {
		cfg := bench.DefaultFig3()
		if quick {
			cfg = bench.QuickFig3()
		}
		cfg.Obs = rec
		ps, err := platforms(plat)
		if err != nil {
			return err
		}
		for _, p := range ps {
			f, err := bench.Fig3(p, cfg)
			if err != nil {
				return err
			}
			if err := emit(f, jsonDir); err != nil {
				return err
			}
		}
		if fig == "3" {
			return nil
		}
	}
	if fig == "4" || fig == "all" {
		cfg := bench.DefaultFig4()
		if quick {
			cfg = bench.QuickFig4()
		}
		cfg.Obs = rec
		ops := []bench.ContigOp{bench.OpGet, bench.OpAcc, bench.OpPut}
		if opFilter != "" {
			ops = []bench.ContigOp{bench.ContigOp(opFilter)}
		}
		ps, err := platforms(plat)
		if err != nil {
			return err
		}
		for _, p := range ps {
			for _, seg := range cfg.SegSizes {
				for _, o := range ops {
					f, err := bench.Fig4(p, o, seg, cfg)
					if err != nil {
						return err
					}
					if err := emit(f, jsonDir); err != nil {
						return err
					}
				}
			}
		}
		if fig == "4" {
			return nil
		}
	}
	if fig == "5" || fig == "all" {
		cfg := bench.DefaultFig5()
		if quick {
			cfg = bench.QuickFig5()
		}
		cfg.Obs = rec
		f, err := bench.Fig5(cfg)
		if err != nil {
			return err
		}
		if err := emit(f, jsonDir); err != nil {
			return err
		}
		if fig == "5" {
			return nil
		}
	}
	if fig == "ablation-shm" || fig == "all" {
		cfg := bench.DefaultShmAblation()
		if quick {
			cfg = bench.QuickShmAblation()
		}
		cfg.Obs = rec
		// Default to InfiniBand (the platform the shm acceptance
		// criterion is stated on); -platform selects another.
		name := plat
		if name == "" {
			name = platform.InfiniBand
		}
		p, err := platform.Lookup(name)
		if err != nil {
			return err
		}
		f, err := bench.AblationShm(p, cfg)
		if err != nil {
			return err
		}
		if err := emit(f, jsonDir); err != nil {
			return err
		}
		if fig == "ablation-shm" {
			return nil
		}
	}
	if fig == "ablation-nbfanout" || fig == "all" {
		cfg := bench.DefaultNbFanout()
		if quick {
			cfg = bench.QuickNbFanout()
		}
		// Default to InfiniBand, where the acceptance criterion (the
		// nonblocking fan-out strictly faster from 4 owners) is stated.
		name := plat
		if name == "" {
			name = platform.InfiniBand
		}
		p, err := platform.Lookup(name)
		if err != nil {
			return err
		}
		f, err := bench.AblationNbFanout(p, cfg)
		if err != nil {
			return err
		}
		if err := emit(f, jsonDir); err != nil {
			return err
		}
		if fig == "ablation-nbfanout" {
			return nil
		}
	}
	if fig == "ablation-locality" || fig == "all" {
		cfg := bench.DefaultLocalityAblation()
		if quick {
			cfg = bench.QuickLocalityAblation()
		}
		cfg.Obs = rec
		// Default to InfiniBand (the platform the dartmpi same-node
		// acceptance criterion is stated on); -platform selects another.
		name := plat
		if name == "" {
			name = platform.InfiniBand
		}
		p, err := platform.Lookup(name)
		if err != nil {
			return err
		}
		f, err := bench.AblationLocality(p, cfg)
		if err != nil {
			return err
		}
		if err := emit(f, jsonDir); err != nil {
			return err
		}
		if fig == "ablation-locality" {
			return nil
		}
	}
	if fig == "wallclock" {
		cfg := bench.DefaultWallclock()
		if quick {
			cfg = bench.QuickWallclock()
		}
		f, err := bench.Wallclock(cfg)
		if err != nil {
			return err
		}
		return emit(f, jsonDir)
	}
	// Like wallclock, scale is excluded from -fig all: its jobs are
	// orders of magnitude larger than every other sweep.
	if fig == "scale" {
		cfg := bench.DefaultScale()
		if quick {
			cfg = bench.QuickScale()
		}
		if scaleSched != nil {
			cfg.Sched = *scaleSched
		}
		cfg.Obs = rec
		f, err := bench.Scale(cfg)
		if err != nil {
			return err
		}
		return emit(f, jsonDir)
	}
	// parallel-speedup is host-time like wallclock and likewise excluded
	// from -fig all.
	if fig == "parallel-speedup" {
		cfg := bench.DefaultParallel()
		if quick {
			cfg = bench.QuickParallel()
		}
		if harness.Shards > 0 {
			var list []int
			for k := 1; k < harness.Shards; k *= 2 {
				list = append(list, k)
			}
			cfg.Shards = append(list, harness.Shards)
		}
		f, err := bench.ParallelSpeedup(cfg)
		if err != nil {
			return err
		}
		return emit(f, jsonDir)
	}
	if fig == "ablations" || fig == "all" {
		return ablations()
	}
	return nil
}

func ablations() error {
	ib := platform.Get(platform.InfiniBand)
	fmt.Println("# Ablation: read-modify-write latency (us/op), InfiniBand")
	rmw, err := bench.AblationRmw(ib, 16)
	if err != nil {
		return err
	}
	for _, k := range []string{"native-atomic", "mpi3-fetchop", "mpi2-mutex"} {
		fmt.Printf("%-16s %10.2f\n", k, rmw[k])
	}
	fmt.Println()

	fmt.Println("# Ablation: SectionVIII.A access modes (total us, 4 readers x 8 gets of 64KiB)")
	modes, err := bench.AblationAccessModes(ib, 4, 8, 1<<16)
	if err != nil {
		return err
	}
	for _, k := range []string{"conflicting", "read-only"} {
		fmt.Printf("%-16s %10.2f\n", k, modes[k])
	}
	fmt.Println()

	fmt.Println("# Ablation: strided method bandwidth (GB/s, 256 x 1KiB segments per platform)")
	for _, p := range platform.All() {
		sm, err := bench.AblationStridedMethods(p, 1024, 256, 3)
		if err != nil {
			return err
		}
		fmt.Printf("%-6s", p.Name)
		for _, k := range []string{"Native", "Direct", "IOV-Direct", "IOV-Batched", "IOV-Consrv"} {
			fmt.Printf("  %s=%.3f", k, sm[k])
		}
		fmt.Println()
	}
	fmt.Println()

	fmt.Println("# Ablation: batched-method epoch size B (GB/s, 64 x 256B segments, InfiniBand)")
	bs, err := bench.AblationBatchSize(ib, 256, 64, []int{1, 4, 16, 64, 0}, 3)
	if err != nil {
		return err
	}
	for _, b := range []int{1, 4, 16, 64, 0} {
		label := fmt.Sprint(b)
		if b == 0 {
			label = "unlimited"
		}
		fmt.Printf("B=%-10s %8.3f\n", label, bs[b])
	}
	fmt.Println()

	fmt.Println("# Ablation: SectionV.F asynchronous progress (put latency us, 20us service delay when disabled)")
	ap, err := bench.AblationAsyncProgress(ib, 20000, 16)
	if err != nil {
		return err
	}
	for _, k := range []string{"async-progress", "no-async-progress"} {
		fmt.Printf("%-20s %10.2f\n", k, ap[k])
	}
	fmt.Println()

	fmt.Println("# Ablation: SectionVIII.B MPI-3 backend vs the paper's MPI-2 design (CCSD proxy, 8 procs, virtual ms)")
	m3, err := bench.AblationMPI3Backend(ib, 8)
	if err != nil {
		return err
	}
	for _, k := range []string{"mpi2-epochs", "mpi3-lockall"} {
		fmt.Printf("%-16s %10.3f\n", k, m3[k])
	}
	fmt.Println()

	fmt.Println("# Ablation: SectionIX two-sided data-server ARMCI vs one-sided stacks")
	fmt.Println("# (4 concurrent 1MiB getters: aggregate GB/s; CCSD proxy at 16 procs: virtual ms)")
	ds, err := bench.AblationDataServer(ib, 4, 3, 1<<20)
	if err != nil {
		return err
	}
	for _, k := range []string{"native", "armci-mpi", "armci-ds"} {
		fmt.Printf("%-12s bw=%-8.3f ccsd=%.3f\n", k, ds[k], ds["ccsd-"+k])
	}
	return nil
}
