package main

import (
	"strings"
	"testing"

	"repro/internal/armcimpi"
	"repro/internal/bench"
	"repro/internal/harness"
	"repro/internal/sim"
)

// TestInstallSched covers the scheduler flag surface: it must fail
// fast — before any job is built — with an error that enumerates every
// valid mode name, and reject shard fan-out outside parallel mode.
func TestInstallSched(t *testing.T) {
	reset := func() {
		harness.Sched = 0
		harness.Shards = 0
		scaleSched = nil
	}
	defer reset()

	reset()
	if err := installSched("fiber", true, 0); err == nil {
		t.Fatal("unknown mode accepted")
	} else {
		for _, name := range sim.ModeNames() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("error %q does not enumerate mode %q", err, name)
			}
		}
	}
	if scaleSched != nil || harness.Sched != 0 {
		t.Error("failed installSched still installed a mode")
	}

	reset()
	if err := installSched("", false, 8); err == nil {
		t.Error("-shards 8 without -sched parallel accepted")
	}
	reset()
	if err := installSched("continuation", true, 4); err == nil {
		t.Error("-shards 4 with -sched continuation accepted")
	}

	reset()
	if err := installSched("parallel", true, 8); err != nil {
		t.Fatal(err)
	}
	if harness.Sched != sim.ModeParallel || harness.Shards != 8 {
		t.Errorf("Sched=%v Shards=%d, want parallel/8", harness.Sched, harness.Shards)
	}
	if scaleSched == nil || *scaleSched != sim.ModeParallel {
		t.Error("scale override not installed")
	}

	reset()
	if err := installSched("", false, 0); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
}

// TestInstallTweak covers the runtime-tuning flag surface: no flags
// installs no hook, bad method names are rejected before any sweep
// runs, and valid flags become an Options hook every benchmark job
// applies.
func TestInstallTweak(t *testing.T) {
	defer func() { bench.Tweak = nil }()

	bench.Tweak = nil
	if err := installTweak(-1, "", ""); err != nil {
		t.Fatalf("no flags: %v", err)
	}
	if bench.Tweak != nil {
		t.Fatal("no flags installed a Tweak hook")
	}

	for _, bad := range []struct{ strided, iov string }{
		{"bogus", ""},
		{"", "bogus"},
		{"", "strided"}, // not a method name at all
	} {
		bench.Tweak = nil
		if err := installTweak(-1, bad.strided, bad.iov); err == nil {
			t.Errorf("installTweak(-1, %q, %q) accepted an unknown method",
				bad.strided, bad.iov)
		}
		if bench.Tweak != nil {
			t.Errorf("failed installTweak(%q, %q) still installed a hook",
				bad.strided, bad.iov)
		}
	}

	bench.Tweak = nil
	if err := installTweak(16, "batched", "conservative"); err != nil {
		t.Fatal(err)
	}
	if bench.Tweak == nil {
		t.Fatal("valid flags installed no Tweak hook")
	}
	opt := armcimpi.DefaultOptions()
	bench.Tweak(&opt)
	if opt.BatchSize != 16 {
		t.Errorf("BatchSize = %d, want 16", opt.BatchSize)
	}
	if opt.StridedMethod != armcimpi.MethodBatched {
		t.Errorf("StridedMethod = %s, want batched", opt.StridedMethod)
	}
	if opt.IOVMethod != armcimpi.MethodConservative {
		t.Errorf("IOVMethod = %s, want conservative", opt.IOVMethod)
	}

	// A partial tweak leaves the other knobs at their defaults.
	def := armcimpi.DefaultOptions()
	if err := installTweak(-1, "iov-direct", ""); err != nil {
		t.Fatal(err)
	}
	opt = armcimpi.DefaultOptions()
	bench.Tweak(&opt)
	if opt.StridedMethod != armcimpi.MethodIOVDirect {
		t.Errorf("StridedMethod = %s, want iov-direct", opt.StridedMethod)
	}
	if opt.IOVMethod != def.IOVMethod || opt.BatchSize != def.BatchSize {
		t.Errorf("partial tweak disturbed other options: iov=%s batch=%d",
			opt.IOVMethod, opt.BatchSize)
	}
}

// TestTweakReachesDartRemoteTier asserts the -strided-method and
// -iov-method flags flow through the shared Options into dartmpi's
// routing decisions: the wire tier of the locality runtime must compile
// with the method the flag selected, since both runtimes now resolve
// methods through the one engine decision layer.
func TestTweakReachesDartRemoteTier(t *testing.T) {
	defer func() { bench.Tweak = nil }()
	if err := installTweak(-1, "conservative", "batched"); err != nil {
		t.Fatal(err)
	}
	opt := armcimpi.DefaultOptions()
	bench.Tweak(&opt)

	j, err := harness.NewJob(harness.TestPlatform(), 4, harness.ImplDartMPI, opt)
	if err != nil {
		t.Fatal(err)
	}
	err = j.Eng.Run(4, func(p *sim.Proc) {
		rt := j.Runtime(p)
		addrs, err := rt.Malloc(4096)
		if err != nil {
			t.Error(err)
			return
		}
		local := rt.MallocLocal(4096)
		if rt.Rank() == 1 {
			pr := rt.(interface {
				RouteOf(armcimpi.RouteRequest) armcimpi.RouteDecision
			})
			d := pr.RouteOf(armcimpi.RouteRequest{
				Class: armcimpi.ClassPut, Shape: armcimpi.ShapeStrided,
				Local: local, Remote: addrs[2], Target: 2, Bytes: 1024,
			})
			if d.Route != armcimpi.RouteRMA || d.Method != armcimpi.MethodConservative {
				t.Errorf("remote strided: route=%s method=%s, want rma/conservative",
					d.Route, d.Method)
			}
			d = pr.RouteOf(armcimpi.RouteRequest{
				Class: armcimpi.ClassGet, Shape: armcimpi.ShapeIOV,
				Target: 2, Bytes: 1024,
			})
			if d.Route != armcimpi.RouteRMA || d.Method != armcimpi.MethodBatched {
				t.Errorf("remote IOV: route=%s method=%s, want rma/batched",
					d.Route, d.Method)
			}
		}
		rt.Barrier()
		if err := rt.FreeLocal(local); err != nil {
			t.Error(err)
		}
		if err := rt.Free(addrs[rt.Rank()]); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
