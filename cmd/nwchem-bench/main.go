// Command nwchem-bench regenerates the paper's Figure 6: NWChem
// CCSD(T) proxy execution time versus process count for ARMCI-Native
// and ARMCI-MPI on the four simulated platforms. The paper shows CCSD
// for all platforms and (T) for the InfiniBand cluster and Cray XE6;
// this harness follows suit unless -triples overrides.
//
// Usage:
//
//	nwchem-bench [-platform bgp|ib|xt5|xe6] [-quick] [-triples=auto|on|off]
//	nwchem-bench -cores 8,16,32
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/platform"
)

func main() {
	plat := flag.String("platform", "", "platform (bgp, ib, xt5, xe6); empty = all")
	quick := flag.Bool("quick", false, "reduced sweep")
	triples := flag.String("triples", "auto", "include the (T) phase: auto (IB and XE6, as the paper), on, off")
	cores := flag.String("cores", "", "comma-separated process counts (overrides defaults)")
	flag.Parse()

	if err := run(*plat, *quick, *triples, *cores); err != nil {
		fmt.Fprintln(os.Stderr, "nwchem-bench:", err)
		os.Exit(1)
	}
}

func run(plat string, quick bool, triples, cores string) error {
	cfg := bench.DefaultFig6()
	if quick {
		cfg = bench.QuickFig6()
	}
	if cores != "" {
		cfg.Cores = nil
		for _, f := range strings.Split(cores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -cores entry %q", f)
			}
			cfg.Cores = append(cfg.Cores, n)
		}
	}
	var plats []*platform.Platform
	if plat == "" {
		plats = platform.All()
	} else {
		p, err := platform.Lookup(plat)
		if err != nil {
			return err
		}
		plats = []*platform.Platform{p}
	}
	for _, p := range plats {
		withT := false
		switch triples {
		case "on":
			withT = true
		case "off":
		case "auto":
			// The paper shows (T) timings for the InfiniBand cluster and
			// the Cray XE6 (Figure 6).
			withT = p.Name == platform.InfiniBand || p.Name == platform.CrayXE6
		default:
			return fmt.Errorf("bad -triples %q", triples)
		}
		fig, err := bench.Fig6(p, cfg, withT)
		if err != nil {
			return err
		}
		fig.Print(os.Stdout)
	}
	return nil
}
