// Command platforms prints the paper's Table II (experimental
// platforms and system characteristics) plus the calibrated model
// parameters behind each simulated machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/platform"
)

func main() {
	verbose := flag.Bool("v", false, "also print the calibrated model parameters")
	flag.Parse()

	bench.Table2(os.Stdout)
	if !*verbose {
		return
	}
	fmt.Println("# Calibrated model parameters")
	for _, p := range platform.All() {
		fmt.Printf("%s (%s)\n", p.Name, p.System)
		fmt.Printf("  link: %.2f GB/s, latency %.1f us, per-msg overhead %.0f ns\n",
			p.Bandwidth/1e9, p.LatencyNs/1e3, p.MsgOverhead)
		fmt.Printf("  cpu: copy %.2f GB/s, %.1f Gflop/s per core, %d cores/node\n",
			p.CopyRate/1e9, p.Flops/1e9, p.CoresPerNode)
		if p.PinPageNs > 0 {
			fmt.Printf("  registration: %.0f us/page, bounce threshold %d B\n",
				p.PinPageNs/1e3, p.BounceThreshold)
		}
		fmt.Printf("  native ARMCI: %.0f%% of link bw, %.0f ns/op",
			p.Native.BandwidthFrac*100, p.Native.OpOverheadNs)
		if p.Native.ScalePenaltyNs > 0 {
			fmt.Printf(", %.1f us/op scale penalty per log2(P)", p.Native.ScalePenaltyNs/1e3)
		}
		fmt.Println()
		fmt.Printf("  MPI RMA: %.0f%% of link bw, %.0f ns/op", p.MPI.BandwidthFrac*100, p.MPI.OpOverheadNs)
		if p.MPI.LargeFrac > 0 {
			fmt.Printf(", %.0f%% beyond %d B", p.MPI.LargeFrac*100, p.MPI.LargeAt)
		}
		if p.MPI.QueueSlowdownNs > 0 {
			fmt.Printf(", epoch-queue slowdown %.0f ns/op beyond %d ops",
				p.MPI.QueueSlowdownNs, p.MPI.QueueThreshold)
		}
		fmt.Println()
	}
}
